// Package sharellc is a trace-driven simulation library for studying
// sharing-aware last-level cache (LLC) replacement in chip
// multiprocessors. It reproduces the system of Natarajan & Chaudhuri,
// "Characterizing multi-threaded applications for designing sharing-aware
// last-level cache replacement policies" (IISWC 2013):
//
//   - a synthetic multi-threaded workload suite modelled on PARSEC,
//     SPLASH-2 and SPEC OMP (Workloads, WorkloadByName),
//   - a functional CMP memory system: per-core L1/L2 and a shared LLC
//     (MachineConfig, NewSuite),
//   - a catalogue of replacement policies from LRU to SHiP plus Belady
//     OPT (PolicyNames, PolicyByName),
//   - residency-level sharing characterization (Suite.Characterize),
//   - the paper's generic sharing oracle, attachable to any policy
//     (Suite.OracleStudy, OracleRun),
//   - realistic address- and PC-indexed fill-time sharing predictors
//     (Suite.PredictorAccuracy, Suite.PredictorDriven), and
//   - the sharing-aware protection wrapper itself (NewSharingAware).
//
// # Quick start
//
//	cfg := sharellc.DefaultConfig()
//	cfg.Models = []sharellc.Model{sharellc.MustWorkload("canneal")}
//	suite, err := sharellc.NewSuite(cfg)
//	if err != nil { ... }
//	rows, err := suite.OracleStudy(4*sharellc.MB, 16, []string{"lru"},
//		sharellc.ProtectorOptions{Strength: sharellc.Full})
//
// Everything is deterministic: all randomness derives from Config.Seed.
//
// The cmd/sharesim binary drives every experiment of the paper from the
// command line; DESIGN.md maps experiments to modules and EXPERIMENTS.md
// records reproduced-vs-paper results.
package sharellc

import (
	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/oracle"
	"sharellc/internal/policy"
	"sharellc/internal/predictor"
	"sharellc/internal/sharing"
	"sharellc/internal/sim"
	"sharellc/internal/workloads"
)

// Byte-size helpers for configuration literals.
const (
	KB = cache.KB
	MB = cache.MB
)

// Core simulation types, aliased from the implementation packages so the
// whole public surface lives in one importable package.
type (
	// Config describes one experimental setup: machine, seed, workload
	// scale and workload list.
	Config = sim.Config
	// MachineConfig is the CMP memory-system geometry.
	MachineConfig = cache.Config
	// Model is one synthetic application.
	Model = workloads.Model
	// Suite holds prepared LLC reference streams and runs experiments.
	Suite = sim.Suite
	// Stream is one workload's LLC reference stream.
	Stream = sim.Stream

	// Policy is the replacement-policy contract of the simulated LLC.
	Policy = cache.Policy
	// PolicyFactory builds fresh policy instances.
	PolicyFactory = policy.Factory

	// ProtectorOptions configures the sharing-aware wrapper.
	ProtectorOptions = core.Options
	// ProtectorStats counts the wrapper's interventions.
	ProtectorStats = core.Stats
	// Strength selects insertion-only or full protection.
	Strength = core.Strength

	// Predictor is a fill-time sharing predictor.
	Predictor = predictor.Predictor
	// PredictorConfig sizes a table predictor.
	PredictorConfig = predictor.Config

	// CharRow, PolicyRow, OracleRow, PredictorRow and DrivenRow are the
	// typed results of the five experiment families.
	CharRow      = sim.CharRow
	PolicyRow    = sim.PolicyRow
	OracleRow    = sim.OracleRow
	PredictorRow = sim.PredictorRow
	DrivenRow    = sim.DrivenRow

	// OracleResult pairs the base and oracle passes of one study.
	OracleResult = oracle.Result

	// Kernel selects the replay inner-loop implementation
	// (Config.Kernel, Suite.WithKernel).
	Kernel = sharing.Kernel

	// Tracker selects the residency-tracker representation
	// (Config.Tracker, Suite.WithTracker).
	Tracker = sharing.Tracker

	// SIMD selects the data-parallel tier of the batched replay
	// (Config.SIMD, Suite.WithSIMD).
	SIMD = sharing.SIMD
)

// Replay kernels. The zero value is the batched kernel; scalar is the
// escape hatch for bisecting replay regressions (the -kernel flag on
// sharesim and sharesimd).
const (
	KernelBatch  = sharing.KernelBatch
	KernelScalar = sharing.KernelScalar
)

// Residency trackers. The zero value is the SoA-column tracker; struct
// is the escape hatch for bisecting tracker regressions (the -tracker
// flag on sharesim and sharesimd).
const (
	TrackerSoA    = sharing.TrackerSoA
	TrackerStruct = sharing.TrackerStruct
)

// SIMD tiers. The zero value picks the assembly kernels when the CPU
// has them and portable SWAR otherwise; swar forces the
// cross-architecture reference tier, off the scalar paths — the
// bisection escape hatch (the -simd flag on sharesim, sharesimd and
// dumprows, the SHARELLC_SIMD environment variable globally). Results
// are bit-identical at every tier.
const (
	SIMDAuto = sharing.SIMDAuto
	SIMDSWAR = sharing.SIMDSWAR
	SIMDOff  = sharing.SIMDOff
)

// Protection strengths.
const (
	// InsertOnly promotes predicted-shared fills but never redirects
	// victim selection.
	InsertOnly = core.InsertOnly
	// Full adds victim exclusion for protected blocks.
	Full = core.Full
)

// DefaultConfig returns the paper's setup: an 8-core CMP with 32 KB L1D
// and 256 KB L2 per core, a 4 MB 16-way shared LLC (use WithLLC or the
// experiment size arguments for 8 MB), seed 1, full-size workloads and
// the full suite.
func DefaultConfig() Config { return sim.DefaultConfig() }

// DefaultMachine returns the paper's 4 MB-LLC machine geometry.
func DefaultMachine() MachineConfig { return cache.DefaultConfig() }

// NewSuite generates and prepares every workload's LLC reference stream
// (in parallel across CPUs).
func NewSuite(cfg Config) (*Suite, error) { return sim.NewSuite(cfg) }

// Workloads returns the full synthetic application suite.
func Workloads() []Model { return workloads.Suite() }

// WorkloadByName returns the named suite application.
func WorkloadByName(name string) (Model, error) { return workloads.ByName(name) }

// MustWorkload is WorkloadByName for literals; it panics on unknown names.
func MustWorkload(name string) Model {
	m, err := workloads.ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

// WorkloadNames lists the suite's application names.
func WorkloadNames() []string { return workloads.Names() }

// PolicyNames lists the replacement-policy catalogue in presentation
// order (LRU first, Belady OPT last).
func PolicyNames() []string { return policy.Names(1) }

// PolicyByName returns a factory for the named catalogue policy; seed
// drives the stochastic policies (Random, BIP, BRRIP, DRRIP).
func PolicyByName(name string, seed uint64) (PolicyFactory, error) {
	return policy.ByName(name, seed)
}

// NewSharingAware wraps any base policy with the paper's sharing-aware
// protection mechanism. The wrapped policy consumes the PredictedShared
// fill hints carried by the access stream.
func NewSharingAware(base Policy, opts ProtectorOptions) *core.Protector {
	return core.NewProtectorOpts(base, opts)
}

// MultiprogrammedOracle runs the sharing oracle over multiprogrammed
// mixes of independent single-threaded programs (the paper's motivating
// contrast — expect no shared hits and no gain).
func MultiprogrammedOracle(mixes [][]Model, machine MachineConfig, seed uint64, llcSize, llcWays int, opts ProtectorOptions) ([]OracleRow, error) {
	return sim.MultiprogrammedOracle(mixes, machine, seed, llcSize, llcWays, opts)
}

// OracleRun performs the paper's two-pass oracle study for one policy on
// one prepared stream: a bare-base pass, then a pass in which every fill
// receives the oracle's sharing hint.
func OracleRun(st *Stream, llcSize, llcWays int, newPolicy func() Policy, opts ProtectorOptions) (*OracleResult, error) {
	return oracle.RunOpts(st.Accesses, llcSize, llcWays, newPolicy, opts)
}

// NewAddressPredictor builds the block-address-indexed fill-time sharing
// predictor.
func NewAddressPredictor(cfg PredictorConfig) (Predictor, error) {
	return predictor.NewAddress(cfg)
}

// NewPCPredictor builds the program-counter-indexed fill-time sharing
// predictor.
func NewPCPredictor(cfg PredictorConfig) (Predictor, error) {
	return predictor.NewPC(cfg)
}

// DefaultPredictorConfig returns the 16K-entry, 2-bit-counter predictor
// table used by the paper-style studies.
func DefaultPredictorConfig() PredictorConfig { return predictor.DefaultConfig() }
