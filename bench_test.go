package sharellc_test

// One benchmark per experiment of the paper's evaluation (see the
// experiment index in DESIGN.md). Each benchmark replays the prepared
// full-size workload streams through the experiment under test and
// reports the experiment's headline metric via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates every table and figure's
// numbers. EXPERIMENTS.md records paper-vs-measured values.

import (
	"math"
	"strconv"
	"sync"
	"testing"

	"sharellc"
)

const (
	llc4MB = 4 * sharellc.MB
	llc8MB = 8 * sharellc.MB
	ways   = 16
)

var (
	suiteOnce sync.Once
	suite     *sharellc.Suite
	suiteErr  error
)

// fullSuite prepares the full-size workload streams once and shares them
// across all benchmarks (stream preparation is workload generation, not
// the experiment under measurement).
func fullSuite(b *testing.B) *sharellc.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = sharellc.NewSuite(sharellc.DefaultConfig())
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// meanSharedHitFrac averages the shared-hit fraction across rows.
func meanSharedHitFrac(rows []sharellc.CharRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.SharedHitFrac
	}
	return sum / float64(len(rows))
}

// meanReduction averages miss reduction across oracle rows for one policy.
func meanReduction(rows []sharellc.OracleRow, pol string) float64 {
	n, sum := 0, 0.0
	for _, r := range rows {
		if r.Policy == pol {
			sum += r.Reduction
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BenchmarkF1SharedHitFraction4MB regenerates F1: the shared vs. private
// split of LLC hit volume at 4 MB under LRU.
func BenchmarkF1SharedHitFraction4MB(b *testing.B) {
	s := fullSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Characterize(llc4MB, ways)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*meanSharedHitFrac(rows), "shared-hit-%")
	}
}

// BenchmarkF2SharedHitFraction8MB regenerates F2 (8 MB LLC).
func BenchmarkF2SharedHitFraction8MB(b *testing.B) {
	s := fullSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Characterize(llc8MB, ways)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*meanSharedHitFrac(rows), "shared-hit-%")
	}
}

// BenchmarkF3SharingDegree regenerates F3: the sharing-degree
// distribution of residencies and hits. The metric is the mean share of
// hits landing in residencies of degree ≥ 2.
func BenchmarkF3SharingDegree(b *testing.B) {
	s := fullSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Characterize(llc4MB, ways)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.DegreeHitShare[1] + r.DegreeHitShare[2] + r.DegreeHitShare[3]
		}
		b.ReportMetric(100*sum/float64(len(rows)), "deg2plus-hit-%")
	}
}

// BenchmarkF4PolicyComparison regenerates F4: every catalogue policy vs.
// LRU and Belady OPT. The metric is OPT's geomean miss ratio vs. LRU
// (how much room all realistic policies leave).
func BenchmarkF4PolicyComparison(b *testing.B) {
	s := fullSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.ComparePolicies(llc4MB, ways, nil)
		if err != nil {
			b.Fatal(err)
		}
		// Geomean of OPT's normalized misses.
		prod, n := 1.0, 0
		for _, r := range rows {
			if r.Policy == "opt" && r.MissesVsLRU > 0 {
				prod *= r.MissesVsLRU
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(math.Pow(prod, 1/float64(n)), "opt-vs-lru")
		}
	}
}

// BenchmarkComparePoliciesSuite times the full-suite F4 sweep itself —
// the table the fused multi-policy replay accelerates: one stream pass
// per workload drives every catalogue policy lane at 4 MB. Tracked in
// BENCH_PR4.json; the reported row count guards against silently
// dropping cells while chasing speed.
func BenchmarkComparePoliciesSuite(b *testing.B) {
	s := fullSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.ComparePolicies(llc4MB, ways, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "rows")
	}
}

// BenchmarkComparePoliciesSuiteScalar is the same sweep forced through
// the scalar replay kernel. Running it back to back with
// BenchmarkComparePoliciesSuite in one process (shared suite build,
// interleaved iterations via -count) gives the batch kernel's A/B
// without cross-run noise; it is not part of the pinned bench.sh set.
func BenchmarkComparePoliciesSuiteScalar(b *testing.B) {
	s := fullSuite(b).WithKernel(sharellc.KernelScalar)
	for i := 0; i < b.N; i++ {
		rows, err := s.ComparePolicies(llc4MB, ways, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "rows")
	}
}

// BenchmarkComparePoliciesSuiteNoSIMD is the same sweep with the SIMD
// tier forced off — the batched kernel with scalar advance loops,
// inline eviction closes and serial decode (the PR 9 paths). Back to
// back with BenchmarkComparePoliciesSuite it is the SIMD tier's
// in-process A/B, the pair bench.sh records as suite_simd_vs_off.
func BenchmarkComparePoliciesSuiteNoSIMD(b *testing.B) {
	s := fullSuite(b).WithSIMD(sharellc.SIMDOff)
	for i := 0; i < b.N; i++ {
		rows, err := s.ComparePolicies(llc4MB, ways, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "rows")
	}
}

// itoa is a terse strconv.Itoa alias for metric names.
func itoa(v int) string { return strconv.Itoa(v) }

// BenchmarkF5OracleLRU regenerates the headline oracle result: average
// LLC miss reduction of oracle-assisted LRU at 4 MB and 8 MB (paper:
// ~6 % and ~10 %).
func BenchmarkF5OracleLRU(b *testing.B) {
	s := fullSuite(b)
	opts := sharellc.ProtectorOptions{Strength: sharellc.Full}
	for i := 0; i < b.N; i++ {
		r4, err := s.OracleStudy(llc4MB, ways, []string{"lru"}, opts)
		if err != nil {
			b.Fatal(err)
		}
		r8, err := s.OracleStudy(llc8MB, ways, []string{"lru"}, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*meanReduction(r4, "lru"), "reduction4MB-%")
		b.ReportMetric(100*meanReduction(r8, "lru"), "reduction8MB-%")
	}
}

// BenchmarkF6OracleAnyPolicy regenerates the "oracle works with any
// policy" leg: oracle-assisted SRRIP, DRRIP and SHiP at 4 MB.
func BenchmarkF6OracleAnyPolicy(b *testing.B) {
	s := fullSuite(b)
	opts := sharellc.ProtectorOptions{Strength: sharellc.Full}
	pols := []string{"srrip", "drrip", "ship"}
	for i := 0; i < b.N; i++ {
		rows, err := s.OracleStudy(llc4MB, ways, pols, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pols {
			b.ReportMetric(100*meanReduction(rows, p), p+"-reduction-%")
		}
	}
}

// BenchmarkF7Predictors regenerates F7: fill-time sharing-predictor
// accuracy for the address- and PC-indexed tables.
func BenchmarkF7Predictors(b *testing.B) {
	s := fullSuite(b)
	cfg := sharellc.DefaultPredictorConfig()
	for i := 0; i < b.N; i++ {
		rows, err := s.PredictorAccuracy(llc4MB, ways, cfg, []string{"addr", "pc"})
		if err != nil {
			b.Fatal(err)
		}
		acc := map[string][2]float64{}
		for _, r := range rows {
			v := acc[r.Predictor]
			v[0] += r.Accuracy
			v[1]++
			acc[r.Predictor] = v
		}
		for p, v := range acc {
			b.ReportMetric(100*v[0]/v[1], p+"-accuracy-%")
		}
	}
}

// BenchmarkF8PredictorPolicy regenerates F8: realistic predictors driving
// the sharing-aware wrapper end-to-end, compared against the oracle
// ceiling (the paper's negative result: realized gain ≪ oracle gain).
func BenchmarkF8PredictorPolicy(b *testing.B) {
	s := fullSuite(b)
	cfg := sharellc.DefaultPredictorConfig()
	opts := sharellc.ProtectorOptions{Strength: sharellc.Full}
	for i := 0; i < b.N; i++ {
		rows, err := s.PredictorDriven(llc4MB, ways, cfg, []string{"addr", "pc"}, opts)
		if err != nil {
			b.Fatal(err)
		}
		sums := map[string][2]float64{}
		var orc, n float64
		for _, r := range rows {
			v := sums[r.Predictor]
			v[0] += r.Reduction
			v[1]++
			sums[r.Predictor] = v
			orc += r.OracleReduction
			n++
		}
		for p, v := range sums {
			b.ReportMetric(100*v[0]/v[1], p+"-reduction-%")
		}
		b.ReportMetric(100*orc/n, "oracle-ceiling-%")
	}
}

// BenchmarkF9SharingPhases regenerates F9: the stability of per-block
// sharing status across program phases (the predictor-failure mechanism).
func BenchmarkF9SharingPhases(b *testing.B) {
	s := fullSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.SharingPhases(0)
		if err != nil {
			b.Fatal(err)
		}
		flip, mixed := 0.0, 0.0
		for _, r := range rows {
			flip += r.FlipRate
			mixed += r.MixedFrac
		}
		b.ReportMetric(flip/float64(len(rows)), "flip-rate")
		b.ReportMetric(100*mixed/float64(len(rows)), "mixed-%")
	}
}

// BenchmarkC1CoherenceTraffic regenerates C1: MESI directory event rates
// over the raw traces (the extension characterization).
func BenchmarkC1CoherenceTraffic(b *testing.B) {
	s := ablationSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.CoherenceCharacterize()
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.C2CTransfersPKR
		}
		b.ReportMetric(sum/float64(len(rows)), "c2c-per-kref")
	}
}

// BenchmarkC2ReuseDistances regenerates C2: the reuse-distance
// distributions by sharing class. The metric is the mean share of shared
// accesses whose stack distance lands between the 4 MB and 8 MB
// capacities — the oracle's 8 MB-only headroom.
func BenchmarkC2ReuseDistances(b *testing.B) {
	s := ablationSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.ReuseDistances(llc4MB)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.SharedShares[3] // the 64K-128K bucket
		}
		b.ReportMetric(100*sum/float64(len(rows)), "shared-4to8MB-%")
	}
}

// BenchmarkA1ProtectionStrength is the A1 ablation: insert-only vs. full
// protection for the oracle on a suite subset.
func BenchmarkA1ProtectionStrength(b *testing.B) {
	s := ablationSuite(b)
	for i := 0; i < b.N; i++ {
		ins, err := s.OracleStudy(llc4MB, ways, []string{"lru"},
			sharellc.ProtectorOptions{Strength: sharellc.InsertOnly})
		if err != nil {
			b.Fatal(err)
		}
		full, err := s.OracleStudy(llc4MB, ways, []string{"lru"},
			sharellc.ProtectorOptions{Strength: sharellc.Full})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*meanReduction(ins, "lru"), "insert-only-%")
		b.ReportMetric(100*meanReduction(full, "lru"), "full-%")
	}
}

// BenchmarkA2PredictorSweep is the A2 ablation: predictor table size.
func BenchmarkA2PredictorSweep(b *testing.B) {
	s := ablationSuite(b)
	for i := 0; i < b.N; i++ {
		for _, bits := range []int{8, 14} {
			cfg := sharellc.DefaultPredictorConfig()
			cfg.TableBits = bits
			rows, err := s.PredictorAccuracy(llc4MB, ways, cfg, []string{"addr"})
			if err != nil {
				b.Fatal(err)
			}
			sum := 0.0
			for _, r := range rows {
				sum += r.Accuracy
			}
			b.ReportMetric(100*sum/float64(len(rows)), "addr-acc-2e"+itoa(bits)+"-%")
		}
	}
}

// BenchmarkA3Associativity is the A3 ablation: oracle gain vs. LLC ways.
func BenchmarkA3Associativity(b *testing.B) {
	s := ablationSuite(b)
	opts := sharellc.ProtectorOptions{Strength: sharellc.Full}
	for i := 0; i < b.N; i++ {
		for _, w := range []int{8, 16, 32} {
			rows, err := s.OracleStudy(llc4MB, w, []string{"lru"}, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*meanReduction(rows, "lru"), "reduction-"+itoa(w)+"w-%")
		}
	}
}

// BenchmarkA4HorizonSweep is the A4 ablation: oracle gain vs. the sharing
// lookahead horizon.
func BenchmarkA4HorizonSweep(b *testing.B) {
	s := ablationSuite(b)
	opts := sharellc.ProtectorOptions{Strength: sharellc.Full}
	for i := 0; i < b.N; i++ {
		rows, err := s.OracleHorizonSweep(llc4MB, ways, []int{1, 4, 8}, opts)
		if err != nil {
			b.Fatal(err)
		}
		sums := map[int][2]float64{}
		for _, r := range rows {
			v := sums[r.Factor]
			v[0] += r.Reduction
			v[1]++
			sums[r.Factor] = v
		}
		for f, v := range sums {
			b.ReportMetric(100*v[0]/v[1], "reduction-h"+itoa(f)+"-%")
		}
	}
}

var (
	ablOnce sync.Once
	abl     *sharellc.Suite
	ablErr  error
)

// ablationSuite prepares a 6-workload subset used by the A* ablations.
func ablationSuite(b *testing.B) *sharellc.Suite {
	b.Helper()
	ablOnce.Do(func() {
		cfg := sharellc.DefaultConfig()
		for _, n := range []string{"canneal", "dedup", "barnes", "ocean", "streamcluster", "swaptions"} {
			cfg.Models = append(cfg.Models, sharellc.MustWorkload(n))
		}
		abl, ablErr = sharellc.NewSuite(cfg)
	})
	if ablErr != nil {
		b.Fatal(ablErr)
	}
	return abl
}

// BenchmarkM1Multiprogrammed regenerates M1: the oracle over
// multiprogrammed mixes (the motivating contrast — expect ~0).
func BenchmarkM1Multiprogrammed(b *testing.B) {
	var mix []sharellc.Model
	for _, n := range []string{"swaptions", "blackscholes", "freqmine", "water", "equake", "lu", "bodytrack", "facesim"} {
		mix = append(mix, sharellc.MustWorkload(n))
	}
	for i := 0; i < b.N; i++ {
		rows, err := sharellc.MultiprogrammedOracle([][]sharellc.Model{mix},
			sharellc.DefaultMachine(), 1, llc4MB, ways,
			sharellc.ProtectorOptions{Strength: sharellc.Full})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rows[0].Reduction, "mix-reduction-%")
	}
}
