module sharellc

go 1.22
