// Quickstart: simulate one multi-threaded workload on the paper's 8-core
// CMP and measure how much an oracle-assisted sharing-aware LRU improves
// on plain LRU at the shared 4 MB LLC.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sharellc"
)

func main() {
	log.SetFlags(0)

	// Pick one application model from the synthetic suite and prepare
	// its LLC reference stream (trace generation + private L1/L2
	// filtering happen inside NewSuite).
	cfg := sharellc.DefaultConfig()
	cfg.Models = []sharellc.Model{sharellc.MustWorkload("canneal")}
	suite, err := sharellc.NewSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := suite.Streams[0]
	fmt.Printf("workload %s: %d raw references -> %d LLC references\n",
		st.Model.Name, st.TraceLen, len(st.Accesses))

	// Run the two-pass oracle study: bare LRU, then LRU wrapped in the
	// sharing-aware protector with perfect fill-time sharing hints.
	lru, err := sharellc.PolicyByName("lru", cfg.Seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, size := range []int{4 * sharellc.MB, 8 * sharellc.MB} {
		res, err := sharellc.OracleRun(st, size, 16,
			func() sharellc.Policy { return lru() },
			sharellc.ProtectorOptions{Strength: sharellc.Full})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%dMB LLC: LRU misses %d, oracle-assisted %d (%.1f%% reduction, %.0f%% of hits were to shared blocks)\n",
			size/sharellc.MB, res.Base.Misses, res.Oracle.Misses,
			100*res.MissReduction(), 100*res.Base.SharedHitFraction())
	}
}
