// Characterize reproduces the paper's characterization methodology for a
// handful of applications: how much of the LLC hit volume comes from
// shared vs. private blocks, and how widely blocks are shared, across
// LLC sizes.
//
//	go run ./examples/characterize
package main

import (
	"fmt"
	"log"

	"sharellc"
)

func main() {
	log.SetFlags(0)

	cfg := sharellc.DefaultConfig()
	for _, n := range []string{"streamcluster", "barnes", "swaptions"} {
		cfg.Models = append(cfg.Models, sharellc.MustWorkload(n))
	}
	suite, err := sharellc.NewSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, size := range []int{2 * sharellc.MB, 4 * sharellc.MB, 8 * sharellc.MB} {
		rows, err := suite.Characterize(size, 16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %d MB LLC (LRU) ---\n", size/sharellc.MB)
		fmt.Printf("%-15s %9s %10s %12s %12s\n",
			"workload", "missrate", "shared-hit", "shared-res", "shared-blk")
		for _, r := range rows {
			fmt.Printf("%-15s %8.1f%% %9.1f%% %11.1f%% %11.1f%%\n",
				r.Workload, 100*r.MissRate, 100*r.SharedHitFrac,
				100*r.SharedResidencyFrac, 100*r.SharedBlockFrac)
		}
		// Degree view: where do hits land?
		fmt.Printf("%-15s hits by sharing degree [1 | 2 | 3-4 | 5+]\n", "")
		for _, r := range rows {
			fmt.Printf("%-15s %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n", r.Workload,
				100*r.DegreeHitShare[0], 100*r.DegreeHitShare[1],
				100*r.DegreeHitShare[2], 100*r.DegreeHitShare[3])
		}
		fmt.Println()
	}
	fmt.Println("Reading guide: shared blocks are a minority of distinct blocks but")
	fmt.Println("supply the majority of LLC hits on sharing-heavy applications —")
	fmt.Println("the observation that motivates sharing-aware replacement.")
}
