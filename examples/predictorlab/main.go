// Predictorlab reproduces the paper's predictability study: can a
// realistic history-based predictor, indexed by block address or by the
// program counter of the fill-triggering instruction, tell at fill time
// whether a block will be shared during its LLC residency?
//
// The lab measures (1) raw prediction quality against residency ground
// truth and (2) the end-to-end effect of letting each predictor drive the
// sharing-aware wrapper, with the offline oracle as the ceiling. The
// paper's conclusion — and this lab's typical output — is negative:
// address/PC history alone does not deliver acceptable accuracy, and the
// realized gain is a small fraction of the oracle's. Two extensions probe
// the paper's closing conjecture: a tournament combination of the two
// history predictors, and a coherence-assisted predictor fed by MESI
// directory events ("other architectural features").
//
//	go run ./examples/predictorlab
package main

import (
	"fmt"
	"log"

	"sharellc"
)

func main() {
	log.SetFlags(0)

	cfg := sharellc.DefaultConfig()
	for _, n := range []string{"canneal", "x264", "barnes"} {
		cfg.Models = append(cfg.Models, sharellc.MustWorkload(n))
	}
	suite, err := sharellc.NewSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}
	const size, ways = 4 * sharellc.MB, 16
	pcfg := sharellc.DefaultPredictorConfig()

	fmt.Println("--- fill-time prediction quality (positive class: shared residency) ---")
	rows, err := suite.PredictorAccuracy(size, ways, pcfg, []string{"addr", "pc", "tournament", "coherence", "always", "never"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-8s %9s %10s %8s %12s\n", "workload", "pred", "accuracy", "precision", "recall", "shared-rate")
	for _, r := range rows {
		fmt.Printf("%-12s %-8s %8.1f%% %9.1f%% %7.1f%% %11.1f%%\n",
			r.Workload, r.Predictor, 100*r.Accuracy, 100*r.Precision, 100*r.Recall, 100*r.SharedBaseRate)
	}

	fmt.Println()
	fmt.Println("--- predictors driving replacement vs. the oracle ceiling ---")
	drows, err := suite.PredictorDriven(size, ways, pcfg, []string{"addr", "pc", "coherence"},
		sharellc.ProtectorOptions{Strength: sharellc.Full})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-8s %11s %13s %10s %8s\n", "workload", "pred", "base-misses", "driven-misses", "realized", "oracle")
	for _, r := range drows {
		fmt.Printf("%-12s %-8s %11d %13d %9.1f%% %7.1f%%\n",
			r.Workload, r.Predictor, r.BaseMisses, r.DrivenMisses,
			100*r.Reduction, 100*r.OracleReduction)
	}
}
