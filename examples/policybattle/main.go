// Policybattle compares the full replacement-policy catalogue — LRU,
// NRU, the DIP and RRIP families, SHiP and offline-optimal Belady OPT —
// on a sharing-heavy and a private-dominated workload, and then shows the
// paper's oracle attached to several of them ("can be used in conjunction
// with any existing policy").
//
//	go run ./examples/policybattle
package main

import (
	"fmt"
	"log"

	"sharellc"
)

func main() {
	log.SetFlags(0)

	cfg := sharellc.DefaultConfig()
	cfg.Models = []sharellc.Model{
		sharellc.MustWorkload("dedup"),
		sharellc.MustWorkload("swaptions"),
	}
	suite, err := sharellc.NewSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}

	const size, ways = 4 * sharellc.MB, 16
	rows, err := suite.ComparePolicies(size, ways, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- every catalogue policy, misses normalized to LRU (4MB LLC) ---")
	fmt.Printf("%-15s %-8s %10s %8s %11s\n", "workload", "policy", "misses", "vs-lru", "shared-hit")
	for _, r := range rows {
		fmt.Printf("%-15s %-8s %10d %8.3f %10.1f%%\n",
			r.Workload, r.Policy, r.Misses, r.MissesVsLRU, 100*r.SharedHitFrac)
	}

	fmt.Println()
	fmt.Println("--- the sharing oracle attached to different base policies ---")
	orows, err := suite.OracleStudy(size, ways, []string{"lru", "srrip", "drrip", "ship"},
		sharellc.ProtectorOptions{Strength: sharellc.Full})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-15s %-8s %12s %14s %10s\n", "workload", "policy", "base-misses", "oracle-misses", "reduction")
	for _, r := range orows {
		fmt.Printf("%-15s %-8s %12d %14d %9.1f%%\n",
			r.Workload, r.Policy, r.BaseMisses, r.OracleMisses, 100*r.Reduction)
	}
}
