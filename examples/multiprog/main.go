// Multiprog reproduces the paper's motivating contrast: most LLC
// replacement proposals were evaluated on multiprogrammed workloads —
// independent programs co-scheduled on the CMP — where nothing is ever
// shared, so sharing-awareness can neither help nor be learned. The same
// oracle that buys several percent on multi-threaded applications is
// provably idle on a mix.
//
//	go run ./examples/multiprog
package main

import (
	"fmt"
	"log"

	"sharellc"
)

func main() {
	log.SetFlags(0)

	// An 8-program mix of single-threaded instances drawn from the suite.
	var mix []sharellc.Model
	for _, n := range []string{"swaptions", "blackscholes", "freqmine", "water",
		"equake", "lu", "bodytrack", "facesim"} {
		mix = append(mix, sharellc.MustWorkload(n))
	}
	const size, ways = 4 * sharellc.MB, 16
	rows, err := sharellc.MultiprogrammedOracle([][]sharellc.Model{mix},
		sharellc.DefaultMachine(), 1, size, ways,
		sharellc.ProtectorOptions{Strength: sharellc.Full})
	if err != nil {
		log.Fatal(err)
	}
	r := rows[0]
	fmt.Printf("%s\n", r.Workload)
	fmt.Printf("  LLC misses: base %d, with sharing oracle %d (%.2f%% reduction)\n",
		r.BaseMisses, r.OracleMisses, 100*r.Reduction)
	fmt.Printf("  shared hit fraction: %.2f%% (nothing is shared by construction)\n",
		100*r.BaseSharedHitFrac)
	fmt.Printf("  protected fills: %d (the hint-rate gate keeps the wrapper idle)\n",
		r.Protector.ProtectedFills)

	// Contrast with the multi-threaded version of the same applications.
	fmt.Println("\nfor contrast, two of those applications run multi-threaded:")
	cfg := sharellc.DefaultConfig()
	cfg.Models = []sharellc.Model{
		sharellc.MustWorkload("freqmine"),
		sharellc.MustWorkload("bodytrack"),
	}
	suite, err := sharellc.NewSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}
	orows, err := suite.OracleStudy(size, ways, []string{"lru"},
		sharellc.ProtectorOptions{Strength: sharellc.Full})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range orows {
		fmt.Printf("  %-10s shared hits %.1f%%, oracle reduction %.2f%%\n",
			r.Workload, 100*r.BaseSharedHitFrac, 100*r.Reduction)
	}
}
